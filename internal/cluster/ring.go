package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping keys to shards. Each shard owns
// VirtualNodes points on a 64-bit ring; a key belongs to the shard owning
// the first point clockwise from the key's hash. Vnode positions depend
// only on the shard's stable ID, so adding a shard moves only
// ~1/(shards+1) of the keyspace and removing one moves only the removed
// shard's arcs — the property the epoch-versioned ShardTopology's live
// rebalancing relies on — while FNV-1a hashing keeps the mapping stable
// across runs and processes (the same guarantee Topology.GroupOfKey
// gives the simulator).
type Ring struct {
	shards int
	points []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVirtualNodes is the per-shard vnode count when ShardConfig
// leaves it zero; 128 keeps shard imbalance within a few percent.
const DefaultVirtualNodes = 128

// NewRing builds a ring over shard IDs 0..shards-1 with vnodes virtual
// nodes per shard (0 means DefaultVirtualNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: ring needs a positive shard count, got %d", shards)
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return NewRingOf(ids, vnodes)
}

// NewRingOf builds a ring over an explicit set of stable shard IDs.
// Because a vnode's position is a function of the shard ID alone, two
// rings sharing an ID place that shard's arcs identically: this is what
// makes AddShard/RemoveShard move only the keys that must move.
func NewRingOf(shardIDs []int, vnodes int) (*Ring, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		shards: len(shardIDs),
		points: make([]ringPoint, 0, len(shardIDs)*vnodes),
	}
	for _, s := range shardIDs {
		if s < 0 {
			return nil, fmt.Errorf("cluster: negative shard ID %d", s)
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so equal hashes (vanishingly rare) sort
		// stably regardless of insertion order.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a key to its owning shard ID. The FNV-1a string hash is
// scrambled with a splitmix finalizer: FNV alone is uniform enough for
// modulo placement (Topology.GroupOfKey) but leaves enough structure in
// the high bits to skew ring-arc lookups.
func (r *Ring) Shard(key string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return r.owner(mix64(h.Sum64()))
}

// ShardOfID maps a dense integer key ID (trace generators) to its shard,
// scrambling first so consecutive IDs spread over the ring.
func (r *Ring) ShardOfID(id uint64) int {
	return r.owner(mix64(id + 0x9e3779b97f4a7c15))
}

// mix64 is the splitmix64 finalizer, the same scramble Topology uses for
// dense key IDs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// owner returns the shard owning the first vnode at or clockwise after h.
func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// vnodeHash positions one virtual node. Two rounds of mix64 over a
// golden-ratio combination of (shard, vnode) spread points uniformly;
// hashing the raw pair with FNV leaves arcs so correlated that a
// 3-shard ring can starve one shard entirely.
func vnodeHash(shard, vnode int) uint64 {
	z := uint64(shard)*0x9e3779b97f4a7c15 + uint64(vnode)*0xc2b2ae3d27d4eb4f
	return mix64(mix64(z) + 0x165667b19e3779f9)
}
