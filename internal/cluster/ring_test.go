package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key:%d", i)
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("ring mapping unstable for %s: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
		if a.ShardOfID(uint64(i)) != b.ShardOfID(uint64(i)) {
			t.Fatalf("ID mapping unstable for %d", i)
		}
	}
}

func TestRingBounds(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if s := r.Shard(fmt.Sprintf("k%d", i)); s < 0 || s >= 3 {
			t.Fatalf("shard %d out of range", s)
		}
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero-shard ring accepted")
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 6, 60000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("key:%d", i))]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if f := float64(c) / mean; f < 0.5 || f > 1.5 {
			t.Fatalf("shard %d holds %.0f%% of mean load (counts %v)", s, f*100, counts)
		}
	}
}

// TestRingStability is the consistent-hashing property: growing the ring
// from N to N+1 shards relocates roughly 1/(N+1) of keys and never moves
// a key between two pre-existing shards.
func TestRingStability(t *testing.T) {
	const keys = 40000
	old, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, _ := NewRing(5, 0)
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key:%d", i)
		a, b := old.Shard(k), grown.Shard(k)
		if a != b {
			moved++
			if b != 4 {
				movedElsewhere++
			}
		}
	}
	frac := float64(moved) / keys
	if frac > 0.35 {
		t.Fatalf("adding one shard moved %.1f%% of keys, want ~20%%", frac*100)
	}
	if movedElsewhere > 0 {
		t.Fatalf("%d keys moved between pre-existing shards", movedElsewhere)
	}
}

// TestRingOfStableIDs: rings sharing a shard ID place that shard's arcs
// identically, so a ring over {0,1,2} and one over {0,2} (shard 1
// removed) agree wherever shard 1 did not own the key.
func TestRingOfStableIDs(t *testing.T) {
	full, err := NewRingOf([]int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := NewRingOf([]int{0, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key:%d", i)
		a, b := full.Shard(k), pruned.Shard(k)
		if a != 1 && a != b {
			t.Fatalf("%s moved from surviving shard %d to %d on removal", k, a, b)
		}
		if b == 1 {
			t.Fatalf("%s routed to the removed shard", k)
		}
	}
	if _, err := NewRingOf(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRingOf([]int{-1}, 0); err == nil {
		t.Fatal("negative shard ID accepted")
	}
}
