package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key:%d", i)
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("ring mapping unstable for %s: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
		if a.ShardOfID(uint64(i)) != b.ShardOfID(uint64(i)) {
			t.Fatalf("ID mapping unstable for %d", i)
		}
	}
}

func TestRingBounds(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if s := r.Shard(fmt.Sprintf("k%d", i)); s < 0 || s >= 3 {
			t.Fatalf("shard %d out of range", s)
		}
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero-shard ring accepted")
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 6, 60000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("key:%d", i))]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if f := float64(c) / mean; f < 0.5 || f > 1.5 {
			t.Fatalf("shard %d holds %.0f%% of mean load (counts %v)", s, f*100, counts)
		}
	}
}

// TestRingStability is the consistent-hashing property: growing the ring
// from N to N+1 shards relocates roughly 1/(N+1) of keys and never moves
// a key between two pre-existing shards.
func TestRingStability(t *testing.T) {
	const keys = 40000
	old, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, _ := NewRing(5, 0)
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key:%d", i)
		a, b := old.Shard(k), grown.Shard(k)
		if a != b {
			moved++
			if b != 4 {
				movedElsewhere++
			}
		}
	}
	frac := float64(moved) / keys
	if frac > 0.35 {
		t.Fatalf("adding one shard moved %.1f%% of keys, want ~20%%", frac*100)
	}
	if movedElsewhere > 0 {
		t.Fatalf("%d keys moved between pre-existing shards", movedElsewhere)
	}
}

func TestShardMapLayout(t *testing.T) {
	m := MustNewShardMap(ShardConfig{Shards: 3, Replicas: 2})
	if m.NumServers() != 6 {
		t.Fatalf("NumServers = %d, want 6", m.NumServers())
	}
	seen := map[int]bool{}
	for s := 0; s < m.Shards(); s++ {
		reps := m.ReplicaServers(s)
		if len(reps) != 2 {
			t.Fatalf("shard %d has %d replicas", s, len(reps))
		}
		for r, srv := range reps {
			if srv != m.Server(s, r) {
				t.Fatalf("ReplicaServers disagrees with Server for %d/%d", s, r)
			}
			if m.ShardOfServer(srv) != s {
				t.Fatalf("ShardOfServer(%d) = %d, want %d", srv, m.ShardOfServer(srv), s)
			}
			if seen[srv] {
				t.Fatalf("server %d assigned to two shards", srv)
			}
			seen[srv] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("placement covers %d servers, want 6", len(seen))
	}
}

func TestShardMapKeyRouting(t *testing.T) {
	m := MustNewShardMap(ShardConfig{Shards: 4, Replicas: 3})
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("track:%d", i)
		s := m.ShardOfKey(k)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if m.ShardOfKey(k) != s {
			t.Fatal("ShardOfKey not deterministic")
		}
	}
}

func TestShardConfigValidate(t *testing.T) {
	if err := (ShardConfig{Shards: 0}).Validate(); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := (ShardConfig{Shards: 3, Replicas: -1}).Validate(); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := (ShardConfig{Shards: 3}).Validate(); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
}
