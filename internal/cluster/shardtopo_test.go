package cluster

import (
	"fmt"
	"testing"
)

func TestShardTopologyLayout(t *testing.T) {
	m := MustNewShardTopology(ShardConfig{Shards: 3, Replicas: 2})
	if m.Epoch() != 1 {
		t.Fatalf("fresh topology epoch = %d, want 1", m.Epoch())
	}
	if m.NumServers() != 6 {
		t.Fatalf("NumServers = %d, want 6", m.NumServers())
	}
	seen := map[int]bool{}
	for _, s := range m.ShardIDs() {
		reps := m.ReplicaServers(s)
		if len(reps) != 2 {
			t.Fatalf("shard %d has %d replicas", s, len(reps))
		}
		for r, srv := range reps {
			if srv != m.Server(s, r) {
				t.Fatalf("ReplicaServers disagrees with Server for %d/%d", s, r)
			}
			if srv != s*2+r {
				t.Fatalf("epoch-1 placement not block layout: shard %d replica %d on server %d", s, r, srv)
			}
			if m.ShardOfServer(srv) != s {
				t.Fatalf("ShardOfServer(%d) = %d, want %d", srv, m.ShardOfServer(srv), s)
			}
			if seen[srv] {
				t.Fatalf("server %d assigned to two shards", srv)
			}
			seen[srv] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("placement covers %d servers, want 6", len(seen))
	}
	if m.ShardOfServer(99) != -1 {
		t.Fatal("unknown server not reported as retired")
	}
}

func TestShardTopologyKeyRouting(t *testing.T) {
	m := MustNewShardTopology(ShardConfig{Shards: 4, Replicas: 3})
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("track:%d", i)
		s := m.ShardOfKey(k)
		if !m.HasShard(s) {
			t.Fatalf("shard %d not in topology", s)
		}
		if m.ShardOfKey(k) != s {
			t.Fatal("ShardOfKey not deterministic")
		}
	}
}

func TestShardConfigValidate(t *testing.T) {
	if err := (ShardConfig{Shards: 0}).Validate(); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := (ShardConfig{Shards: 3, Replicas: -1}).Validate(); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := (ShardConfig{Shards: 3}).Validate(); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
}

// TestShardTopologyAddShard: the epoch advances, the new shard gets
// fresh server IDs, and only keys claimed by the new shard move.
func TestShardTopologyAddShard(t *testing.T) {
	old := MustNewShardTopology(ShardConfig{Shards: 3, Replicas: 2})
	next, err := old.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != old.Epoch()+1 {
		t.Fatalf("epoch %d after AddShard on epoch %d", next.Epoch(), old.Epoch())
	}
	if old.Shards() != 3 || old.NumServers() != 6 {
		t.Fatal("AddShard mutated its receiver")
	}
	newID := old.NextShardID()
	if !next.HasShard(newID) || next.Shards() != 4 {
		t.Fatalf("new shard %d missing: ids %v", newID, next.ShardIDs())
	}
	for _, sid := range next.ReplicaServers(newID) {
		if old.ShardOfServer(sid) != -1 {
			t.Fatalf("new shard reuses server %d", sid)
		}
	}
	moved, movedWrong := 0, 0
	const keys = 20000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key:%d", i)
		a, b := old.ShardOfKey(k), next.ShardOfKey(k)
		if a != b {
			moved++
			if b != newID {
				movedWrong++
			}
		}
	}
	if movedWrong > 0 {
		t.Fatalf("%d keys moved between pre-existing shards", movedWrong)
	}
	if frac := float64(moved) / keys; frac > 0.45 || frac == 0 {
		t.Fatalf("adding one shard to 3 moved %.1f%% of keys, want ~25%%", frac*100)
	}
}

// TestShardTopologyRemoveShard: only the removed shard's keys move, its
// servers retire, and the last shard cannot be removed.
func TestShardTopologyRemoveShard(t *testing.T) {
	old := MustNewShardTopology(ShardConfig{Shards: 3, Replicas: 2})
	next, err := old.RemoveShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != old.Epoch()+1 || next.Shards() != 2 || next.HasShard(1) {
		t.Fatalf("bad removal result: epoch %d shards %v", next.Epoch(), next.ShardIDs())
	}
	for _, sid := range old.ReplicaServers(1) {
		if next.ShardOfServer(sid) != -1 {
			t.Fatalf("server %d of removed shard still assigned", sid)
		}
	}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key:%d", i)
		a, b := old.ShardOfKey(k), next.ShardOfKey(k)
		if a != 1 && a != b {
			t.Fatalf("%s moved off surviving shard %d", k, a)
		}
		if b == 1 {
			t.Fatalf("%s still routed to removed shard", k)
		}
	}
	if _, err := old.RemoveShard(9); err == nil {
		t.Fatal("removing an unknown shard accepted")
	}
	one := MustNewShardTopology(ShardConfig{Shards: 1, Replicas: 1})
	if _, err := one.RemoveShard(0); err == nil {
		t.Fatal("removing the last shard accepted")
	}
}

// TestShardTopologyAddAfterRemove: IDs retire permanently — re-adding
// after a removal allocates a fresh shard ID and fresh server IDs.
func TestShardTopologyAddAfterRemove(t *testing.T) {
	t0 := MustNewShardTopology(ShardConfig{Shards: 2, Replicas: 2})
	t1, err := t0.RemoveShard(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := t1.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if t2.HasShard(1) {
		t.Fatal("removed shard ID reused")
	}
	if got := t2.ShardIDs(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("shard IDs after remove+add: %v, want [0 2]", got)
	}
	for _, sid := range t2.ReplicaServers(2) {
		if sid < 4 {
			t.Fatalf("retired server ID %d reused", sid)
		}
	}
	if t2.Epoch() != 3 {
		t.Fatalf("epoch %d after two changes, want 3", t2.Epoch())
	}
}

func TestShardTopologyAddrsAndAssemble(t *testing.T) {
	t0 := MustNewShardTopology(ShardConfig{Shards: 2, Replicas: 2})
	addrs := []string{"a:1", "a:2", "b:1", "b:2"}
	bound, err := t0.WithAddrs(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Epoch() != t0.Epoch() {
		t.Fatal("WithAddrs changed the epoch")
	}
	for i, sid := range bound.Servers() {
		if bound.Addr(sid) != addrs[i] {
			t.Fatalf("server %d addr %q, want %q", sid, bound.Addr(sid), addrs[i])
		}
	}
	if _, err := t0.WithAddrs(addrs[:3]); err == nil {
		t.Fatal("short address list accepted")
	}

	grown, err := bound.AddShard("c:1", "c:2")
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the export/assemble pair (the wire path).
	re, err := AssembleTopology(grown.Epoch(), grown.Replicas(), grown.VirtualNodes(), grown.Assignments())
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != grown.Epoch() || re.Shards() != grown.Shards() || re.NumServers() != grown.NumServers() {
		t.Fatalf("assemble mismatch: %d/%d/%d vs %d/%d/%d",
			re.Epoch(), re.Shards(), re.NumServers(), grown.Epoch(), grown.Shards(), grown.NumServers())
	}
	for _, sid := range grown.Servers() {
		if re.Addr(sid) != grown.Addr(sid) || re.ShardOfServer(sid) != grown.ShardOfServer(sid) {
			t.Fatalf("server %d not preserved through assemble", sid)
		}
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key:%d", i)
		if re.ShardOfKey(k) != grown.ShardOfKey(k) {
			t.Fatalf("%s routed differently after assemble", k)
		}
	}
	// Assemble validation.
	if _, err := AssembleTopology(0, 2, 0, grown.Assignments()); err == nil {
		t.Fatal("epoch 0 accepted")
	}
	if _, err := AssembleTopology(1, 2, 0, nil); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := AssembleTopology(1, 2, 0, []ShardAssignment{
		{ID: 0, Servers: []int{0, 1}}, {ID: 1, Servers: []int{1, 2}},
	}); err == nil {
		t.Fatal("server in two shards accepted")
	}
}
