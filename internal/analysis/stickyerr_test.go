package analysis_test

import (
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
	"github.com/brb-repro/brb/internal/analysis/analysistest"
)

func TestStickyErr(t *testing.T) {
	// The kv and netstore fixture mirrors exercise the unexported
	// targets (wal methods, connState.send) at in-package call sites;
	// stickyerr/use covers the exported ConnWriter surface.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.StickyErr},
		"./internal/kv", "./internal/netstore", "./stickyerr/...")
}
