package analysis_test

import (
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
	"github.com/brb-repro/brb/internal/analysis/analysistest"
)

func TestCtxFirst(t *testing.T) {
	// Covers the request-path package (path suffix internal/netstore)
	// and the cmd/ exemption for root contexts.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.CtxFirst}, "./ctxfirst/...")
}
