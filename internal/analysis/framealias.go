package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FrameAlias polices the PR 2 zero-copy decode contract: a message
// obtained from wire.DecodeAlias (or raw bytes from Frame.Bytes)
// aliases a pooled frame buffer and is valid only while that frame is
// held. The sanctioned patterns are (a) use-then-release within the
// function, (b) cloning (strings.Clone / string(b) / append) before
// retaining, and (c) handing the aliased data to a struct that also
// takes ownership of the frame itself — the server's batchState, whose
// release() drops both together. Everything else — storing aliased
// strings or byte slices into globals, fields of long-lived receivers,
// channels, or goroutine closures, or touching them after Release —
// is a use-after-free against the frame pool: the bug corrupts keys
// and values only under recycling pressure, which is exactly when a
// test is least likely to catch it.
//
// The analysis is per-function and intentionally conservative in what
// it reports: passing aliased values as call arguments and returning
// them is allowed (the caller still holds the frame), so helpers like
// topoFromWire are checked where they retain, not where they receive.
var FrameAlias = &Analyzer{
	Name: "framealias",
	Doc: "data decoded via wire.DecodeAlias / Frame.Bytes must not outlive its " +
		"frame: no stores to long-lived state, channels, or goroutines, and no " +
		"use after Release, unless the frame travels (and is released) with it",
	Run: runFrameAlias,
}

func runFrameAlias(pass *Pass) error {
	// The wire package implements the aliasing machinery; it is the one
	// place allowed to manufacture and dismantle these values.
	if PkgPathIs(pass.Pkg.Path(), "internal/wire") {
		return nil
	}
	wirePkg := findWirePackage(pass.Pkg)
	if wirePkg == nil {
		return nil // no wire import, nothing to alias
	}
	msgIface, _ := wirePkg.Scope().Lookup("Message").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncAliasing(pass, wirePkg, msgIface, fd)
		}
	}
	return nil
}

// findWirePackage locates the imported package whose path ends in
// internal/wire (fixture mirrors included).
func findWirePackage(pkg *types.Package) *types.Package {
	for _, imp := range pkg.Imports() {
		if PkgPathIs(imp.Path(), "internal/wire") {
			return imp
		}
	}
	return nil
}

// aliasState is the per-function taint state.
type aliasState struct {
	pass    *Pass
	wire    *types.Package
	msg     *types.Interface
	tainted map[types.Object]bool // values aliasing some frame
	frames  map[types.Object]bool // values of type *wire.Frame
	// frameFed holds locals that were assigned a *wire.Frame into one of
	// their fields (or via a composite literal): structs that own their
	// frame may own aliased data too.
	frameFed map[types.Object]bool
	locals   map[types.Object]bool // objects declared inside this function body
}

func checkFuncAliasing(pass *Pass, wirePkg *types.Package, msgIface *types.Interface, fd *ast.FuncDecl) {
	st := &aliasState{
		pass:     pass,
		wire:     wirePkg,
		msg:      msgIface,
		tainted:  make(map[types.Object]bool),
		frames:   make(map[types.Object]bool),
		frameFed: make(map[types.Object]bool),
		locals:   make(map[types.Object]bool),
	}
	// Record local declarations (params and receivers are NOT local:
	// storing into them outlives the call).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				st.locals[obj] = true
			}
		}
		return true
	})
	// Seed taint: message-typed parameters alias their caller's frame,
	// and frame-typed parameters are frames.
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if st.isFrameType(obj.Type()) {
					st.frames[obj] = true
				} else if st.isMessageType(obj.Type()) {
					st.tainted[obj] = true
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)

	// Taint propagation to a fixed point (assignment chains are short;
	// the bound guards pathological files).
	for i := 0; i < 8; i++ {
		if !st.propagate(fd.Body) {
			break
		}
	}
	st.findFrameFed(fd.Body)
	st.reportEscapes(fd.Body)
	st.reportUseAfterRelease(fd.Body)
}

func (st *aliasState) info() *types.Info { return st.pass.TypesInfo }

// isFrameType reports t == *wire.Frame (or wire.Frame).
func (st *aliasState) isFrameType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Frame" && named.Obj().Pkg() == st.wire
}

// isMessageType reports whether t is a wire message (a named type from
// the wire package implementing wire.Message, or the interface itself).
func (st *aliasState) isMessageType(t types.Type) bool {
	if st.msg == nil {
		return false
	}
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok || named.Obj().Pkg() != st.wire {
		return false
	}
	return types.Implements(t, st.msg) || types.Identical(t.Underlying(), st.msg)
}

// aliasKind reports whether a value of type t can physically alias
// frame bytes: strings, byte slices, and slices thereof. Scalars copied
// out of a message (Seq, Version…) are frame-independent.
func aliasKind(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UntypedString
	case *types.Slice:
		elem := u.Elem().Underlying()
		if b, ok := elem.(*types.Basic); ok {
			return b.Kind() == types.Byte || b.Kind() == types.String
		}
		return aliasKind(u.Elem())
	case *types.Interface:
		// A Message interface value carries its aliased fields; error
		// values (reused err variables) never alias frame bytes.
		return !isErrorType(t)
	case *types.Pointer:
		return aliasKind(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasKind(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return false
}

// exprTainted reports whether e evaluates to frame-aliasing data.
func (st *aliasState) exprTainted(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.info().Uses[e]
		return obj != nil && st.tainted[obj] && aliasKind(obj.Type())
	case *ast.SelectorExpr:
		// m.Key is tainted when m is; selecting a scalar field is clean.
		if tv, ok := st.info().Types[ast.Expr(e)]; ok && !aliasKind(tv.Type) {
			return false
		}
		return st.exprTainted(e.X)
	case *ast.IndexExpr:
		if tv, ok := st.info().Types[ast.Expr(e)]; ok && !aliasKind(tv.Type) {
			return false
		}
		return st.exprTainted(e.X)
	case *ast.SliceExpr:
		return st.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return st.exprTainted(e.X)
	case *ast.StarExpr:
		return st.exprTainted(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.exprTainted(e.X)
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if st.exprTainted(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return st.callTainted(e)
	}
	return false
}

// callTainted: call results are clean (the callee is responsible for
// cloning what it keeps — checked when analyzing the callee), with two
// exceptions: the taint sources themselves, and append, which copies
// slice headers but not the bytes the headers point at.
func (st *aliasState) callTainted(call *ast.CallExpr) bool {
	if fn := st.pass.CalleeFunc(call); fn != nil && fn.Pkg() == st.wire {
		if fn.Name() == "DecodeAlias" || (fn.Name() == "Bytes" && RecvTypeName(fn) == "Frame") {
			return true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := st.info().Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			for _, arg := range call.Args {
				if st.exprTainted(arg) {
					return true
				}
			}
		}
	}
	return false
}

// propagate runs one round of taint/frame propagation over simple
// assignments; returns whether anything changed.
func (st *aliasState) propagate(body *ast.BlockStmt) bool {
	changed := false
	mark := func(id *ast.Ident, m map[types.Object]bool) {
		obj := st.info().Defs[id]
		if obj == nil {
			obj = st.info().Uses[id]
		}
		if obj != nil && !m[obj] {
			m[obj] = true
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						// x.f = tainted / x[i] = tainted: the container
						// now holds aliased data — taint its root so a
						// later escape of the container is caught.
						if st.exprTainted(n.Rhs[i]) {
							if root := rootIdent(n.Lhs[i]); root != nil {
								mark(root, st.tainted)
							}
						}
						continue
					}
					if st.exprTainted(n.Rhs[i]) {
						mark(id, st.tainted)
					}
					if tv, ok := st.info().Types[n.Rhs[i]]; ok && st.isFrameType(tv.Type) {
						mark(id, st.frames)
					}
				}
			} else if len(n.Rhs) == 1 {
				// v, err := DecodeAlias(...) and friends.
				if st.exprTainted(n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := objOf(st.info(), id); obj != nil && aliasKind(obj.Type()) {
								mark(id, st.tainted)
							}
						}
					}
				}
			}
		case *ast.TypeSwitchStmt:
			// switch m := msg.(type): each clause binds an implicit object.
			var subject ast.Expr
			if as, ok := n.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if ta, ok := as.Rhs[0].(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			} else if es, ok := n.Assign.(*ast.ExprStmt); ok {
				if ta, ok := es.X.(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			}
			if subject != nil && st.exprTainted(subject) {
				for _, clause := range n.Body.List {
					if obj := st.info().Implicits[clause]; obj != nil && !st.tainted[obj] {
						st.tainted[obj] = true
						changed = true
					}
				}
			}
		case *ast.RangeStmt:
			// for _, v := range taintedSlice: v aliases too.
			if st.exprTainted(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := objOf(st.info(), id); obj != nil && aliasKind(obj.Type()) {
						mark(id, st.tainted)
					}
				}
				if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
					if obj := objOf(st.info(), id); obj != nil && aliasKind(obj.Type()) {
						mark(id, st.tainted)
					}
				}
			}
		}
		return true
	})
	return changed
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// findFrameFed marks locals that receive a frame into a field — either
// `x.frame = f` or `x := T{frame: f}` — as frame-owning containers.
func (st *aliasState) findFrameFed(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			tv, ok := st.info().Types[as.Rhs[i]]
			frameRHS := ok && st.isFrameType(tv.Type)
			if !frameRHS {
				if cl, isCl := ast.Unparen(as.Rhs[i]).(*ast.CompositeLit); isCl {
					for _, elt := range cl.Elts {
						v := elt
						if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
							v = kv.Value
						}
						if tvv, okv := st.info().Types[v]; okv && st.isFrameType(tvv.Type) {
							frameRHS = true
						}
					}
				}
			}
			if !frameRHS {
				continue
			}
			if root := rootIdent(as.Lhs[i]); root != nil {
				if obj := objOf(st.info(), root); obj != nil {
					st.frameFed[obj] = true
				}
			}
		}
		return true
	})
}

// rootIdent digs to the base identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// reportEscapes flags stores of tainted values into anything that
// outlives the function's view of the frame.
func (st *aliasState) reportEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || !st.exprTainted(rhs) {
					continue
				}
				st.checkStore(lhs, rhs)
			}
		case *ast.SendStmt:
			if st.exprTainted(n.Value) {
				st.pass.Reportf(n.Value.Pos(), "frame-aliased value sent on a channel: the receiver outlives the frame — clone it first (strings.Clone / append)")
			}
		case *ast.FuncLit:
			// Any reference to tainted state inside a closure: the
			// closure can outlive the frame (goroutines especially).
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				obj := st.info().Uses[id]
				if obj != nil && st.tainted[obj] && aliasKind(obj.Type()) {
					st.pass.Reportf(id.Pos(), "frame-aliased %s captured by a closure: the closure may outlive the frame — clone before capturing", id.Name)
					return false
				}
				return true
			})
			return false // inner statements were just checked
		}
		return true
	})
}

// checkStore decides whether an assignment target makes tainted rhs
// outlive the frame.
func (st *aliasState) checkStore(lhs, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// Plain local rebinding: taint propagates, no escape yet. A
		// package-level var is an escape.
		obj := objOf(st.info(), l)
		if obj != nil && !st.locals[obj] && obj.Parent() == obj.Pkg().Scope() {
			st.pass.Reportf(lhs.Pos(), "frame-aliased value stored in package-level %s: outlives the frame — clone it first", l.Name)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := objOf(st.info(), root)
		if obj == nil {
			return
		}
		if st.frameFed[obj] {
			return // the container owns its frame: lifetime travels with it
		}
		if st.locals[obj] {
			// A store into a local struct/slice/map is only dangerous
			// once that local escapes; flagging every scratch struct
			// would drown the signal. The returned-container case is
			// handled by callers of this function's result under the
			// same rules when they retain it.
			return
		}
		st.pass.Reportf(lhs.Pos(), "frame-aliased value stored through %s (parameter, receiver, or global): outlives the frame — clone it, or hand the frame over with it", root.Name)
	}
}

// reportUseAfterRelease flags reads of tainted values, or of the frame
// itself, in statements after frame.Release() within the same block.
func (st *aliasState) reportUseAfterRelease(body *ast.BlockStmt) {
	var walkBlock func(list []ast.Stmt)
	walkBlock = func(list []ast.Stmt) {
		released := -1
		for i, stmt := range list {
			if released >= 0 && i > released {
				st.checkReleasedUse(stmt)
			}
			if released < 0 && st.isReleaseStmt(stmt) {
				released = i
			}
			// Recurse into nested blocks with a fresh horizon.
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					walkBlock(n.List)
					return false
				case *ast.CaseClause:
					walkBlock(n.Body)
					return false
				case *ast.CommClause:
					walkBlock(n.Body)
					return false
				}
				return true
			})
		}
	}
	walkBlock(body.List)
}

// isReleaseStmt matches `f.Release()` as a statement, f being a frame.
func (st *aliasState) isReleaseStmt(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := st.pass.CalleeFunc(call)
	if fn == nil || fn.Name() != "Release" || RecvTypeName(fn) != "Frame" || fn.Pkg() != st.wire {
		return false
	}
	return true
}

// checkReleasedUse reports tainted reads inside stmt.
func (st *aliasState) checkReleasedUse(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := st.info().Uses[id]
		if obj == nil {
			return true
		}
		if st.tainted[obj] && aliasKind(obj.Type()) {
			st.pass.Reportf(id.Pos(), "%s aliases a frame already released in this block: the pool may have recycled it", id.Name)
			return false
		}
		return true
	})
}
