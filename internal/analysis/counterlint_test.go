package analysis_test

import (
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
	"github.com/brb-repro/brb/internal/analysis/analysistest"
)

func TestCounterLint(t *testing.T) {
	// counterlint/b re-registers a counter owned by counterlint/a,
	// exercising the cross-package exactly-once index.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.CounterLint}, "./counterlint/...")
}

func TestSuppression(t *testing.T) {
	// A valid //brb:allow silences its analyzer on the next line;
	// malformed or unknown-analyzer markers are diagnostics themselves.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.CounterLint}, "./suppress")
}
