package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// CounterLint enforces the internal/metrics registry scheme from PR 4
// (counters) and PR 10 (histograms): every counter name is a string
// literal matching ^[a-z][a-z0-9_]+_total$ and every histogram name a
// string literal matching ^[a-z][a-z0-9_]+_(ns|bytes)$, each resolved
// exactly once into a package-level var. Literal names keep `grep` and
// dashboards authoritative; the once-rule pins the documented registry
// idiom (resolve at init, one atomic op per event) and catches
// copy-paste name collisions between subsystems before two call sites
// silently share one instrument. _test.go files are exempt: tests
// register scratch instruments.
var CounterLint = &Analyzer{
	Name: "counterlint",
	Doc: "metrics.GetCounter/GetHistogram names must be *_total / *_(ns|bytes) " +
		"string literals, resolved once into a package-level var, and " +
		"registered by exactly one call site",
	Run: runCounterLint,
}

var (
	counterNameRE   = regexp.MustCompile(`^[a-z][a-z0-9_]+_total$`)
	histogramNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]+_(ns|bytes)$`)
)

// registryFuncs maps the internal/metrics registration entry points to
// the naming rule their names must satisfy.
var registryFuncs = map[string]*regexp.Regexp{
	"GetCounter":   counterNameRE,
	"GetHistogram": histogramNameRE,
}

// counterRegistration records the first registration site per name
// across the whole driver run (all packages), via Pass.Shared.
type counterRegistration struct {
	pkg string
	pos token.Position
}

func runCounterLint(pass *Pass) error {
	// The registry implementation itself is exempt.
	if PkgPathIs(pass.Pkg.Path(), "internal/metrics") {
		return nil
	}
	seen, ok := pass.Shared["counterlint.names"].(map[string]counterRegistration)
	if !ok {
		seen = make(map[string]counterRegistration)
		pass.Shared["counterlint.names"] = seen
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Package-level var declarations are the sanctioned home for
		// registration calls; remember their extent.
		atVarLevel := make(map[*ast.CallExpr]bool)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn, _ := registryCallee(pass, call); fn != "" {
						atVarLevel[call] = true
					}
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fnName, nameRE := registryCallee(pass, call)
			if fnName == "" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Pos(), "%s name must be a string literal (greppable, dashboard-stable), not a computed value", fnName)
				return true
			}
			name := lit.Value[1 : len(lit.Value)-1] // strip quotes; names never need escapes
			if !nameRE.MatchString(name) {
				pass.Reportf(lit.Pos(), "%s name %q must match %s", fnName, name, nameRE)
			}
			if !atVarLevel[call] {
				pass.Reportf(call.Pos(), "%s(%q) outside a package-level var: resolve registry instruments once at init, not per event", fnName, name)
				return true
			}
			if prev, dup := seen[name]; dup {
				pass.Reportf(call.Pos(), "name %q already registered at %s: each counter/histogram has exactly one owning call site", name, prev.pos)
			} else {
				seen[name] = counterRegistration{pkg: pass.Pkg.Path(), pos: pass.Fset.Position(call.Pos())}
			}
			return true
		})
	}
	return nil
}

// registryCallee reports whether call targets one of internal/metrics'
// registration functions, returning its name and naming rule ("" when
// it is not one).
func registryCallee(pass *Pass, call *ast.CallExpr) (string, *regexp.Regexp) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !PkgPathIs(fn.Pkg().Path(), "internal/metrics") {
		return "", nil
	}
	re, ok := registryFuncs[fn.Name()]
	if !ok {
		return "", nil
	}
	return fn.Name(), re
}
