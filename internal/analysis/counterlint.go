package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// CounterLint enforces the internal/metrics counter registry scheme
// from PR 4: every counter name is a string literal matching
// ^[a-z][a-z0-9_]+_total$, resolved exactly once into a package-level
// var. Literal names keep `grep` and dashboards authoritative; the
// once-rule pins the documented registry idiom (resolve at init, one
// atomic add per event) and catches copy-paste name collisions between
// subsystems before two call sites silently share one counter.
// _test.go files are exempt: tests register scratch counters.
var CounterLint = &Analyzer{
	Name: "counterlint",
	Doc: "metrics.GetCounter names must be *_total string literals, resolved " +
		"once into a package-level var, and registered by exactly one call site",
	Run: runCounterLint,
}

var counterNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]+_total$`)

// counterRegistration records the first GetCounter site per name across
// the whole driver run (all packages), via Pass.Shared.
type counterRegistration struct {
	pkg string
	pos token.Position
}

func runCounterLint(pass *Pass) error {
	// The registry implementation itself is exempt.
	if PkgPathIs(pass.Pkg.Path(), "internal/metrics") {
		return nil
	}
	seen, ok := pass.Shared["counterlint.names"].(map[string]counterRegistration)
	if !ok {
		seen = make(map[string]counterRegistration)
		pass.Shared["counterlint.names"] = seen
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Package-level var declarations are the sanctioned home for
		// GetCounter calls; remember their extent.
		atVarLevel := make(map[*ast.CallExpr]bool)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isGetCounter(pass, call) {
					atVarLevel[call] = true
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isGetCounter(pass, call) {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Pos(), "counter name must be a string literal (greppable, dashboard-stable), not a computed value")
				return true
			}
			name := lit.Value[1 : len(lit.Value)-1] // strip quotes; names never need escapes
			if !counterNameRE.MatchString(name) {
				pass.Reportf(lit.Pos(), "counter name %q must match %s", name, counterNameRE)
			}
			if !atVarLevel[call] {
				pass.Reportf(call.Pos(), "GetCounter(%q) outside a package-level var: resolve counters once at init, not per event", name)
				return true
			}
			if prev, dup := seen[name]; dup {
				pass.Reportf(call.Pos(), "counter %q already registered at %s: each counter has exactly one owning call site", name, prev.pos)
			} else {
				seen[name] = counterRegistration{pkg: pass.Pkg.Path(), pos: pass.Fset.Position(call.Pos())}
			}
			return true
		})
	}
	return nil
}

func isGetCounter(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	return fn != nil && fn.Name() == "GetCounter" && fn.Pkg() != nil && PkgPathIs(fn.Pkg().Path(), "internal/metrics")
}
