package analysis

// Package loading without golang.org/x/tools: a two-step `go list`
// pipeline. The first invocation resolves the target patterns to
// packages (with their test files). The second, with -deps -export,
// compiles every dependency into the build cache and reports each
// package's export-data file, which go/importer's gc importer reads
// directly. Target packages are then parsed and type-checked from
// source — test files included, which export data alone cannot give —
// in dependency order, so targets that import other targets resolve
// against the in-memory, source-checked result (this is what lets
// external _test packages see export_test.go identifiers).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns (e.g. "./...") in dir into fully type-checked
// packages, test files included. An external test package (package
// foo_test) is returned as its own Package with path "foo_test".
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var clean []listedPackage
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		clean = append(clean, t)
	}
	targets = clean

	// Gather every import any target (or its tests) names, and resolve
	// the transitive closure to export-data files. Targets themselves
	// are type-checked from source and served from memory instead.
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}
	depSet := make(map[string]bool)
	for _, t := range targets {
		for _, imps := range [][]string{t.Imports, t.TestImports, t.XTestImports} {
			for _, imp := range imps {
				if imp != "C" && imp != "unsafe" && !isTarget[imp] {
					depSet[imp] = true
				}
			}
		}
	}
	exports := make(map[string]string)
	if len(depSet) > 0 {
		deps := make([]string, 0, len(depSet))
		for d := range depSet {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		depPkgs, err := goList(dir, append([]string{"-deps", "-export"}, deps...)...)
		if err != nil {
			return nil, err
		}
		for _, d := range depPkgs {
			if d.Export != "" {
				exports[d.ImportPath] = d.Export
			}
		}
	}

	fset := token.NewFileSet()
	imp := &cachingImporter{
		mem: make(map[string]*types.Package),
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}).(types.ImporterFrom),
	}

	// Type-check targets in dependency order so in-module imports hit
	// the in-memory results.
	order, err := topoSort(targets)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range order {
		pkg, err := checkPackage(fset, imp, t.Dir, t.ImportPath, append(append([]string{}, t.GoFiles...), t.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		imp.mem[t.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	// External test packages go last: they may import any target.
	for _, t := range order {
		if len(t.XTestGoFiles) == 0 {
			continue
		}
		xpkg, err := checkPackage(fset, imp, t.Dir, t.ImportPath+"_test", t.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, xpkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.ImporterFrom, dir, path string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		full := f
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, f)
		}
		af, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, err)
	}
	return &Package{PkgPath: path, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// cachingImporter serves source-checked targets from memory and
// everything else from compiler export data.
type cachingImporter struct {
	mem map[string]*types.Package
	gc  types.ImporterFrom
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ci.mem[path]; ok {
		return p, nil
	}
	return ci.gc.ImportFrom(path, dir, mode)
}

// topoSort orders targets so every target appears after the targets it
// (or its in-package tests) imports. External-test imports do not
// constrain the order: the xtest unit is checked after its subject
// anyway, and counting them would make kv <-> netstore style test
// cycles unsortable.
func topoSort(targets []listedPackage) ([]listedPackage, error) {
	byPath := make(map[string]*listedPackage, len(targets))
	for i := range targets {
		byPath[targets[i].ImportPath] = &targets[i]
	}
	var order []listedPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imps := range [][]string{p.Imports, p.TestImports} {
			for _, imp := range imps {
				if dep, ok := byPath[imp]; ok && dep.ImportPath != p.ImportPath {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, *p)
		return nil
	}
	for i := range targets {
		if err := visit(&targets[i]); err != nil {
			return nil, err
		}
	}
	return order, nil
}
