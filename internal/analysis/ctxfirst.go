package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the PR 5 context-first request API: in the packages
// that serve requests (internal/netstore, internal/kv,
// internal/cluster), an exported function or method that takes a
// context must take it as the first parameter — deadlines propagate
// end-to-end only when every layer threads the same ctx. It also bans
// minting fresh root contexts (context.Background / context.TODO)
// outside cmd/, examples/, and tests: library code that invents its own
// root silently detaches from the caller's deadline and cancellation.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "exported functions in request-path packages must take context.Context " +
		"first; context.Background/TODO are reserved for binaries, examples, and tests",
	Run: runCtxFirst,
}

// ctxFirstPackages are the request-path packages (matched by path
// suffix so fixture mirrors behave like the real tree).
var ctxFirstPackages = []string{"internal/netstore", "internal/kv", "internal/cluster"}

func runCtxFirst(pass *Pass) error {
	inRequestPath := false
	for _, sfx := range ctxFirstPackages {
		if PkgPathIs(pass.Pkg.Path(), sfx) {
			inRequestPath = true
			break
		}
	}
	rootExempt := PathHasSegment(pass.Pkg.Path(), "cmd") || PathHasSegment(pass.Pkg.Path(), "examples")

	for _, f := range pass.Files {
		testFile := pass.IsTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if inRequestPath && !testFile {
					checkCtxPosition(pass, n)
				}
			case *ast.CallExpr:
				if rootExempt || testFile {
					return true
				}
				fn := pass.CalleeFunc(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(n.Pos(), "context.%s outside cmd/, examples/, and tests: accept a ctx from the caller (or derive from a Close-cancelled root)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func checkCtxPosition(pass *Pass, decl *ast.FuncDecl) {
	if !decl.Name.IsExported() || decl.Type.Params == nil {
		return
	}
	obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			if i != 0 {
				pass.Reportf(decl.Name.Pos(), "%s takes context.Context as parameter %d: context must be the first parameter", decl.Name.Name, i+1)
			}
			return
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
