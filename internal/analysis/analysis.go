// Package analysis is brb-vet's analyzer framework: a small,
// dependency-free skeleton of golang.org/x/tools/go/analysis shaped so
// the five project analyzers (framealias, ctxfirst, stickyerr,
// sleepless, counterlint) could migrate to the real framework by
// changing imports. The repo's invariants — pooled-frame aliasing
// lifetimes, context-first APIs, sticky fail-stop errors, sleep-free
// tests, the *_total counter registry — are conventions the compiler
// cannot check; this package makes them machine-checked so the heavy
// refactors the ROADMAP queues (hot-path rework, disk overflow tier,
// erasure striping) cannot silently break them.
//
// Suppression: a "//brb:allow <analyzer> <reason>" comment disables the
// named analyzer on its own line and the line directly below it. The
// reason is mandatory; a malformed brb:allow is itself a diagnostic.
// Suppressions are the escape hatch for sites where a convention is
// deliberately, documentedly violated — never for convenience.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run is called once per loaded
// package with a fully type-checked Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in //brb:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through one
// analyzer. Diagnostics go through Reportf so suppression handling is
// uniform across analyzers.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Shared is one map per driver run (all packages, all analyzers):
	// cross-package state like counterlint's registered-name index.
	// Keys are namespaced by analyzer name.
	Shared map[string]any

	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)
	// allow is the suppression index for this package's files.
	allow *allowIndex
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf emits a diagnostic unless a //brb:allow comment for this
// analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file. Several
// analyzers scope themselves to test files (sleepless) or away from
// them (stickyerr, counterlint's once-check).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPathIs reports whether path is, or ends with, the given
// slash-separated suffix ("internal/wire" matches both the real module
// path and test fixtures that mirror it).
func PkgPathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PathHasSegment reports whether the import path contains seg as a
// whole path element (used for the cmd/ and examples/ exemptions).
func PathHasSegment(path, seg string) bool {
	for _, part := range strings.Split(path, "/") {
		if part == seg {
			return true
		}
	}
	return false
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed values, built-ins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.TypesInfo.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// RecvTypeName returns the bare name of fn's receiver type ("" for
// plain functions), with any pointer stripped.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// allowIndex maps file -> line -> analyzers suppressed on that line.
type allowIndex struct {
	fset  *token.FileSet
	lines map[string]map[int]map[string]bool // filename -> line -> analyzer set
}

const allowPrefix = "//brb:allow"

// buildAllowIndex scans every comment in files for brb:allow markers.
// Malformed markers (missing analyzer name or reason, or an unknown
// analyzer) are reported through report directly: a suppression that
// does not say what it suppresses, or why, suppresses nothing.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *allowIndex {
	idx := &allowIndex{fset: fset, lines: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{Pos: c.Pos(), Analyzer: "brbvet",
						Message: "malformed //brb:allow: want \"//brb:allow <analyzer> <reason>\""})
					continue
				}
				name := fields[0]
				if !known[name] {
					report(Diagnostic{Pos: c.Pos(), Analyzer: "brbvet",
						Message: fmt.Sprintf("//brb:allow names unknown analyzer %q", name)})
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.lines[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return idx
}

func (idx *allowIndex) suppressed(analyzer string, pos token.Position) bool {
	byLine := idx.lines[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

// Run executes analyzers over pkgs and returns every diagnostic sorted
// by position. This is the in-process driver used by both cmd/brb-vet's
// standalone mode and analysistest.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	shared := make(map[string]any)
	for _, pkg := range pkgs {
		// One allow index per package; malformed-marker diagnostics are
		// emitted once per package, not once per analyzer.
		allow := buildAllowIndex(pkg.Fset, pkg.Syntax, known, collect)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Shared:    shared,
				report:    collect,
				allow:     allow,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return diags, nil
}

// All returns the full brb-vet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FrameAlias,
		CtxFirst,
		StickyErr,
		Sleepless,
		CounterLint,
	}
}
