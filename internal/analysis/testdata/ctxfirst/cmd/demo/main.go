// cmd/ binaries are the sanctioned place to mint root contexts.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
