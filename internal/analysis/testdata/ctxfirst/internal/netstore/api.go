// Fixtures for the ctxfirst analyzer: this package's path ends in
// internal/netstore, putting it on the request path.
package netstore

import "context"

type Client struct{}

func (c *Client) Fetch(key string, ctx context.Context) error { // want `first parameter`
	_ = ctx
	return nil
}

func (c *Client) Get(ctx context.Context, key string) error {
	_ = ctx
	return nil
}

func (c *Client) NoCtx(key string) error { return nil }

// unexported helpers may order params freely.
func retry(key string, ctx context.Context) { _ = ctx }

func (c *Client) Detach() context.Context {
	return context.Background() // want `context.Background`
}

func (c *Client) Postpone() context.Context {
	return context.TODO() // want `context.TODO`
}

func (c *Client) Rooted() context.Context {
	//brb:allow ctxfirst lifecycle root, cancelled by Close
	return context.Background()
}
