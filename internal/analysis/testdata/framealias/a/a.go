// Fixtures for the framealias analyzer: each flagged line retains
// frame-aliased data past the frame's lifetime; the clean variants show
// the sanctioned patterns (clone before retaining, use-then-release,
// frame-owning containers).
package a

import (
	"strings"

	"example.com/brbfix/internal/wire"
)

// Sink is a retained destination shared with the multi-package fixture
// in framealias/b.
type Sink struct {
	Name string
}

var lastName string

type cache struct {
	name string
}

func StoreGlobal(m *wire.Echo) {
	lastName = m.Name // want `package-level`
}

func (c *cache) Keep(m *wire.Echo) {
	c.name = m.Name // want `outlives the frame`
}

func (c *cache) KeepClone(m *wire.Echo) {
	c.name = strings.Clone(m.Name)
}

func Index(idx map[string][]byte, m *wire.Echo) {
	idx[m.Name] = m.Payload // want `outlives the frame`
}

func IndexCopied(idx map[string][]byte, m *wire.Echo) {
	val := make([]byte, len(m.Payload))
	copy(val, m.Payload)
	idx[strings.Clone(m.Name)] = val
}

func Publish(ch chan string, m *wire.Echo) {
	ch <- m.Name // want `sent on a channel`
}

func Spawn(m *wire.Echo) {
	go func() {
		_ = m.Name // want `captured by a closure`
	}()
}

func UseAfterRelease(f *wire.Frame) {
	msg, err := wire.DecodeAlias(f.Bytes())
	if err != nil {
		return
	}
	echo, ok := msg.(*wire.Echo)
	if !ok {
		return
	}
	name := echo.Name
	f.Release()
	println(name) // want `already released`
}

func UseThenRelease(f *wire.Frame) string {
	msg, err := wire.DecodeAlias(f.Bytes())
	if err != nil {
		f.Release()
		return ""
	}
	var out string
	if e, ok := msg.(*wire.Echo); ok {
		out = strings.Clone(e.Name)
	}
	f.Release()
	return out
}

// batch owns its frame: release() drops data and frame together, so
// holding aliased fields is sanctioned (the batchState pattern).
type batch struct {
	frame *wire.Frame
	name  string
}

func NewBatch(f *wire.Frame, m *wire.Echo) *batch {
	b := new(batch)
	b.frame = f
	b.name = m.Name
	return b
}

func (b *batch) release() {
	b.frame.Release()
	b.frame = nil
}
