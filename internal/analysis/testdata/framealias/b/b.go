// Multi-package framealias fixture: the retained container type comes
// from package a and the message type from the fake wire package, so the
// analyzer must resolve taint across two package boundaries.
package b

import (
	"strings"

	"example.com/brbfix/framealias/a"
	"example.com/brbfix/internal/wire"
)

func Retain(s *a.Sink, m *wire.Echo) {
	s.Name = m.Name // want `outlives the frame`
}

func RetainClone(s *a.Sink, m *wire.Echo) {
	s.Name = strings.Clone(m.Name)
}

func RetainRanged(s *a.Sink, m *wire.Echo) {
	for _, addr := range m.Addrs {
		s.Name = addr // want `outlives the frame`
	}
}
