// Fixtures for the //brb:allow suppression machinery itself: a valid
// marker silences its analyzer on the marker's line and the next line;
// a marker without an analyzer and reason, or naming an unknown
// analyzer, is a diagnostic in its own right (reported as "brbvet").
// The bad markers ride as trailing comments, with the expectation on
// the following line via want-prev, because the diagnostic lands on the
// marker itself where no want comment can fit.
package suppress

import "example.com/brbfix/internal/metrics"

//brb:allow counterlint legacy dashboard name, kept until the rename migration
var legacy = metrics.GetCounter("LegacyOps")

var orphan = metrics.GetCounter("fix_sup_ok_total") //brb:allow
// want-prev `malformed`

var unknown = metrics.GetCounter("fix_sup_other_total") //brb:allow nosuchanalyzer because reasons
// want-prev `unknown analyzer`

func Touch() {
	legacy.Inc()
	orphan.Inc()
	unknown.Inc()
}
