// Fixtures for the counterlint analyzer: naming, literal-ness, and
// package-level-var placement.
package a

import "example.com/brbfix/internal/metrics"

var (
	opsTotal = metrics.GetCounter("fix_a_ops_total")
	dupTotal = metrics.GetCounter("fix_dup_total")
	badName  = metrics.GetCounter("OpsTotal") // want `must match`
)

var counterName = "fix_dynamic_total"

var computed = metrics.GetCounter(counterName) // want `string literal`

var (
	latencyNS = metrics.GetHistogram("fix_a_latency_ns")
	sizeHist  = metrics.GetHistogram("fix_a_value_bytes")
	histDup   = metrics.GetHistogram("fix_dup_hist_ns")
	// Histograms carry a unit suffix, not _total.
	badHist = metrics.GetHistogram("fix_a_wait_total") // want `must match`
)

func Record() {
	metrics.GetCounter("fix_hot_path_total").Inc() // want `outside a package-level var`
	opsTotal.Inc()
	dupTotal.Inc()
	badName.Inc()
	computed.Inc()
	metrics.GetHistogram("fix_hot_hist_ns").Record(1) // want `outside a package-level var`
	latencyNS.Record(1)
	sizeHist.Record(1)
	histDup.Record(1)
	badHist.Record(1)
}
