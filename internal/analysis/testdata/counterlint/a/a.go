// Fixtures for the counterlint analyzer: naming, literal-ness, and
// package-level-var placement.
package a

import "example.com/brbfix/internal/metrics"

var (
	opsTotal = metrics.GetCounter("fix_a_ops_total")
	dupTotal = metrics.GetCounter("fix_dup_total")
	badName  = metrics.GetCounter("OpsTotal") // want `must match`
)

var counterName = "fix_dynamic_total"

var computed = metrics.GetCounter(counterName) // want `string literal`

func Record() {
	metrics.GetCounter("fix_hot_path_total").Inc() // want `outside a package-level var`
	opsTotal.Inc()
	dupTotal.Inc()
	badName.Inc()
	computed.Inc()
}
