// Cross-package counterlint fixture: fix_dup_total is already owned by
// package a (imported, so a is always analyzed first).
package b

import (
	"example.com/brbfix/counterlint/a"
	"example.com/brbfix/internal/metrics"
)

var dupAgain = metrics.GetCounter("fix_dup_total") // want `already registered`

var histAgain = metrics.GetHistogram("fix_dup_hist_ns") // want `already registered`

func Touch() {
	a.Record()
	dupAgain.Inc()
	histAgain.Record(1)
}
