module example.com/brbfix

go 1.22
