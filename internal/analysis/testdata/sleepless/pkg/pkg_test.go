package pkg

import (
	"testing"
	"time"
)

func TestNaughty(t *testing.T) {
	time.Sleep(time.Millisecond) // want `time.Sleep in test`
	Backoff()
}

func TestSoak(t *testing.T) {
	//brb:allow sleepless genuine soak: nothing observable to poll here
	time.Sleep(time.Millisecond)
}
