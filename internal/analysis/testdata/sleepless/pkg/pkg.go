// Fixture host for the sleepless analyzer: sleeps in non-test files are
// out of scope (polling helpers like testutil live in one).
package pkg

import "time"

func Backoff() {
	time.Sleep(time.Millisecond)
}
