// Fixtures for the stickyerr analyzer seen from a ConnWriter consumer.
package use

import "example.com/brbfix/internal/wire"

func Drop(w *wire.ConnWriter, m wire.Message) {
	w.Send(m)     // want `error discarded`
	_ = w.Flush() // want `assigned to _`
}

func Checked(w *wire.ConnWriter, m wire.Message) error {
	if err := w.Send(m); err != nil {
		return err
	}
	return w.Flush()
}
