// Package metrics mirrors the real registry's GetCounter/GetHistogram
// entry points for the counterlint fixtures.
package metrics

// Counter is a registered event counter.
type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

var registry = map[string]*Counter{}

// GetCounter resolves (registering on first use) the named counter.
func GetCounter(name string) *Counter {
	if c, ok := registry[name]; ok {
		return c
	}
	c := &Counter{}
	registry[name] = c
	return c
}

// RHistogram is a registered latency/size histogram.
type RHistogram struct{ n uint64 }

func (h *RHistogram) Record(v int64) { h.n++ }

var histRegistry = map[string]*RHistogram{}

// GetHistogram resolves (registering on first use) the named histogram.
func GetHistogram(name string) *RHistogram {
	if h, ok := histRegistry[name]; ok {
		return h
	}
	h := &RHistogram{}
	histRegistry[name] = h
	return h
}
