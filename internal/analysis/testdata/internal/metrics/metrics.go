// Package metrics mirrors the real counter registry's GetCounter entry
// point for the counterlint fixtures.
package metrics

// Counter is a registered event counter.
type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

var registry = map[string]*Counter{}

// GetCounter resolves (registering on first use) the named counter.
func GetCounter(name string) *Counter {
	if c, ok := registry[name]; ok {
		return c
	}
	c := &Counter{}
	registry[name] = c
	return c
}
