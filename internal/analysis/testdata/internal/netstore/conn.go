// Fixtures for the stickyerr analyzer's netstore-side target: the
// connState.send wrapper over ConnWriter.
package netstore

import "example.com/brbfix/internal/wire"

type connState struct{ w *wire.ConnWriter }

func (c *connState) send(m wire.Message) error { return c.w.Send(m) }

func respond(c *connState, m wire.Message) {
	c.send(m) // want `error discarded`
}

func respondChecked(c *connState, m wire.Message) error {
	return c.send(m)
}
