// Package wire mirrors the real internal/wire surface the analyzers
// key on (the import-path suffix is what they match): pooled Frames,
// zero-copy DecodeAlias, the Message interface, and the sticky-error
// ConnWriter.
package wire

import "errors"

// Frame stands in for a pooled receive buffer.
type Frame struct{ buf []byte }

func NewFrame(b []byte) *Frame { return &Frame{buf: b} }

func (f *Frame) Bytes() []byte { return f.buf }

func (f *Frame) Release() { f.buf = nil }

// Message is the decoded-message interface.
type Message interface {
	Kind() uint8
}

// Echo is a concrete message whose string/byte fields alias the frame.
type Echo struct {
	Name    string
	Payload []byte
	Addrs   []string
	Seq     uint64
}

func (*Echo) Kind() uint8 { return 1 }

// DecodeAlias decodes b without copying: the result aliases b.
func DecodeAlias(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, errors.New("wire: empty frame")
	}
	return &Echo{Name: string(b[:1]), Payload: b}, nil
}

// ConnWriter latches its first error, like the real coalescing writer.
type ConnWriter struct{ err error }

func (w *ConnWriter) Send(m Message) error { return w.err }

func (w *ConnWriter) Flush() error { return w.err }
