// Fixtures for the stickyerr analyzer's kv-side targets. The path suffix
// internal/kv makes wal/Durable/writeSnapshot call sites here match the
// real package's, including the unexported methods only callable
// in-package.
package kv

type wal struct{ err error }

func (w *wal) append(op byte, key string) error { return w.err }

func (w *wal) appendAsync(op byte, key string) error { return w.err }

func (w *wal) rotate() error { return w.err }

func (w *wal) close() error { return w.err }

func writeSnapshot(path string) error { return nil }

type Durable struct{ w wal }

func (d *Durable) Set(key string, val []byte) error { return d.w.append(1, key) }

func (d *Durable) Close() error { return d.w.close() }

func (d *Durable) purge(key string) {
	d.w.appendAsync(2, key) // want `error discarded`
}

func (d *Durable) shutdown() {
	defer d.w.close()         // want `error unobservable`
	_ = writeSnapshot("snap") // want `assigned to _`
}

func (d *Durable) spin() {
	go d.w.rotate() // want `error unobservable`
}

func (d *Durable) flushAll(key string) error {
	if err := d.w.append(1, key); err != nil {
		return err
	}
	return writeSnapshot("snap")
}

func (d *Durable) bestEffort(key string) {
	//brb:allow stickyerr best-effort purge: the WAL is already fail-stopped
	_ = d.w.appendAsync(2, key)
}
