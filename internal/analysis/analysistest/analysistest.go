// Package analysistest is the golden-test driver for brb-vet analyzers,
// a small stand-in for golang.org/x/tools/go/analysis/analysistest with
// the same testing idiom: fixture packages under a testdata module carry
// `// want "regex"` comments on the lines where diagnostics must appear,
// and the driver fails the test on any unexpected, missing, or
// mismatched diagnostic. Lines with no want comment double as the
// clean-pass assertions.
//
// Two extensions over the x/tools syntax, both needed because brb-vet
// diagnostics can land on comment-only lines (malformed //brb:allow
// markers), where a same-line want comment cannot physically fit:
//
//	// want `regex`        expectation for this line
//	// want-prev `regex`   expectation for the line above
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	pattern string
	matched bool
}

// Run loads patterns from dir (a self-contained Go module, typically
// "testdata"), runs analyzers over the loaded packages, and checks the
// resulting diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					ws, err := parseWant(c.Text, pos.Filename, pos.Line)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					wants = append(wants, ws...)
				}
			}
		}
	}

	fset := pkgs[0].Fset
outer:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			re, err := regexp.Compile(w.pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", w.file, w.line, w.pattern, err)
			}
			if re.MatchString(d.Message) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// parseWant extracts the expectations (if any) from one comment.
func parseWant(text, file string, line int) ([]*expectation, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil // block comments carry no wants
	}
	body = strings.TrimSpace(body)
	var spec string
	switch {
	case strings.HasPrefix(body, "want-prev"):
		spec = strings.TrimPrefix(body, "want-prev")
		line--
	case strings.HasPrefix(body, "want "), strings.HasPrefix(body, "want\t"), strings.HasPrefix(body, "want`"), strings.HasPrefix(body, `want"`):
		spec = strings.TrimPrefix(body, "want")
	default:
		return nil, nil
	}
	var out []*expectation
	for {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			break
		}
		pat, rest, err := cutPattern(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, &expectation{file: file, line: line, pattern: pat})
		spec = rest
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment lists no patterns: %q", text)
	}
	return out, nil
}

// cutPattern splits one leading string literal (backquoted or quoted)
// off spec.
func cutPattern(spec string) (pattern, rest string, err error) {
	switch spec[0] {
	case '`':
		end := strings.IndexByte(spec[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated pattern: %q", spec)
		}
		return spec[1 : 1+end], spec[end+2:], nil
	case '"':
		i := 1
		for i < len(spec) && spec[i] != '"' {
			if spec[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(spec) {
			return "", "", fmt.Errorf("unterminated pattern: %q", spec)
		}
		unq, err := strconv.Unquote(spec[:i+1])
		if err != nil {
			return "", "", fmt.Errorf("bad pattern %q: %v", spec[:i+1], err)
		}
		return unq, spec[i+1:], nil
	}
	return "", "", fmt.Errorf("want patterns are quoted or backquoted strings: %q", spec)
}
