package analysis

import (
	"go/ast"
)

// Sleepless bans time.Sleep in _test.go files. PR 6 replaced
// sleep-based timing with explicit synchronization points — the
// FaultInjector stall gate, the injectable hedge timer, and polling
// helpers whose loops live outside test files (internal/testutil) — so
// a sleep in a test is either a flake waiting for a slow machine or a
// wasted fixed delay on a fast one.
var Sleepless = &Analyzer{
	Name: "sleepless",
	Doc: "time.Sleep is banned in tests: wait on an observable condition " +
		"(testutil.Eventually, FaultInjector.StalledCount, the hedge-timer hook) " +
		"instead of guessing a margin",
	Run: runSleepless,
}

func runSleepless(pass *Pass) error {
	for _, f := range pass.Files {
		if !pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep in test: poll an observable condition (testutil.Eventually) or use the FaultInjector/hedge-timer hooks")
			}
			return true
		})
	}
	return nil
}
