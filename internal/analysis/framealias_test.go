package analysis_test

import (
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
	"github.com/brb-repro/brb/internal/analysis/analysistest"
)

func TestFrameAlias(t *testing.T) {
	// framealias/b imports framealias/a and the fake wire package, so
	// this also exercises cross-package type resolution.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.FrameAlias}, "./framealias/...")
}
