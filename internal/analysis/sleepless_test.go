package analysis_test

import (
	"testing"

	"github.com/brb-repro/brb/internal/analysis"
	"github.com/brb-repro/brb/internal/analysis/analysistest"
)

func TestSleepless(t *testing.T) {
	// The fixture sleeps in both a test file (flagged, and separately
	// suppressed) and a non-test file (out of scope).
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Sleepless}, "./sleepless/...")
}
