package analysis

import (
	"go/ast"
	"go/types"
)

// StickyErr guards the fail-stop contract from PRs 2 and 7: the
// coalescing ConnWriter and the WAL both latch their first error and
// refuse further work, which only fail-stops the system if callers
// actually look at the returned error. A discarded error on these paths
// — dropped as a bare statement, assigned to _, or detached via go or
// defer — is how an unacked write turns into a silently acked one.
// Intentional discards on paths where the sticky design makes the error
// redundant (a response send on a conn the readLoop will tear down)
// carry a //brb:allow stickyerr comment stating exactly that.
var StickyErr = &Analyzer{
	Name: "stickyerr",
	Doc: "errors from ConnWriter sends, WAL append/fsync/rotate/close, and " +
		"snapshot writes must be checked: these APIs fail-stop, and dropping " +
		"the error drops the stop",
	Run: runStickyErr,
}

// stickyTarget names one method (or package function, Recv=="") whose
// error result is load-bearing.
type stickyTarget struct {
	PkgSuffix string
	Recv      string
	Name      string
}

var stickyTargets = []stickyTarget{
	{"internal/wire", "ConnWriter", "Send"},
	{"internal/wire", "ConnWriter", "SendVectored"},
	{"internal/wire", "ConnWriter", "Flush"},
	// The server/controller response path: a thin wrapper over
	// ConnWriter.Send with the same contract.
	{"internal/netstore", "connState", "send"},
	// WAL internals (package kv's own call sites).
	{"internal/kv", "wal", "append"},
	{"internal/kv", "wal", "appendAsync"},
	{"internal/kv", "wal", "rotate"},
	{"internal/kv", "wal", "close"},
	// The durable store's public write/snapshot surface.
	{"internal/kv", "Durable", "Set"},
	{"internal/kv", "Durable", "SetVersion"},
	{"internal/kv", "Durable", "Delete"},
	{"internal/kv", "Durable", "DeleteVersion"},
	{"internal/kv", "Durable", "Snapshot"},
	{"internal/kv", "Durable", "Close"},
	{"internal/kv", "", "writeSnapshot"},
}

func runStickyErr(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || !isStickyTarget(fn) {
				return true
			}
			switch parent := parents[call].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(), "%s: error discarded — check it (the sticky error is the fail-stop)", fn.Name())
			case *ast.GoStmt:
				pass.Reportf(call.Pos(), "go %s: error unobservable — call it synchronously and check", fn.Name())
			case *ast.DeferStmt:
				pass.Reportf(call.Pos(), "defer %s: error unobservable — capture it in a deferred closure", fn.Name())
			case *ast.AssignStmt:
				if errResultsAllBlank(pass, parent, call, fn) {
					pass.Reportf(call.Pos(), "%s: error assigned to _ — check it or //brb:allow with the reason the sticky design covers this site", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func isStickyTarget(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	recv := RecvTypeName(fn)
	for _, t := range stickyTargets {
		if t.Name == fn.Name() && t.Recv == recv && PkgPathIs(fn.Pkg().Path(), t.PkgSuffix) {
			return true
		}
	}
	return false
}

// errResultsAllBlank reports whether every error-typed result of call
// lands in the blank identifier within assign.
func errResultsAllBlank(pass *Pass, assign *ast.AssignStmt, call *ast.CallExpr, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	// Only the `x, err := f()` single-call form can be matched
	// positionally; anything more exotic is left to the compiler.
	if len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) {
		return false
	}
	results := sig.Results()
	if results.Len() != len(assign.Lhs) {
		return false
	}
	sawErr := false
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		sawErr = true
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return sawErr
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// buildParents maps every node in f to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
