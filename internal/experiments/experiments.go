// Package experiments regenerates every figure and table of the paper's
// evaluation (§2.2), plus the ablation sweeps listed in DESIGN.md §3. Each
// experiment returns a metrics.Table whose rows mirror what the paper
// plots, so the CLI and the benchmark harness print directly comparable
// output.
package experiments

import (
	"fmt"
	"sort"

	"github.com/brb-repro/brb/internal/baseline"
	"github.com/brb-repro/brb/internal/c3"
	"github.com/brb-repro/brb/internal/cluster"
	"github.com/brb-repro/brb/internal/core"
	"github.com/brb-repro/brb/internal/credits"
	"github.com/brb-repro/brb/internal/engine"
	"github.com/brb-repro/brb/internal/metrics"
	"github.com/brb-repro/brb/internal/model"
	"github.com/brb-repro/brb/internal/sim"
	"github.com/brb-repro/brb/internal/workload"
)

func newModel(a core.Assigner) engine.Strategy { return model.New(a) }

// StrategyFactory builds a fresh strategy instance per run (strategies
// hold per-run state and must not be shared across runs).
type StrategyFactory func() engine.Strategy

// Figure2Strategies returns the five configurations of Figure 2 in the
// paper's legend order: C3, EqualMax-Credits, EqualMax-Model,
// UnifIncr-Credits, UnifIncr-Model.
func Figure2Strategies() map[string]StrategyFactory {
	return map[string]StrategyFactory{
		"C3":               func() engine.Strategy { return c3.New(c3.Options{}) },
		"EqualMax-Credits": func() engine.Strategy { return credits.New(core.EqualMax{}, credits.Options{}) },
		"EqualMax-Model":   func() engine.Strategy { return newModel(core.EqualMax{}) },
		"UnifIncr-Credits": func() engine.Strategy { return credits.New(core.UnifIncr{}, credits.Options{}) },
		"UnifIncr-Model":   func() engine.Strategy { return newModel(core.UnifIncr{}) },
	}
}

// Figure2Order is the paper's legend order for stable table output.
var Figure2Order = []string{"C3", "EqualMax-Credits", "EqualMax-Model", "UnifIncr-Credits", "UnifIncr-Model"}

// RunSeeds executes a strategy across the given seeds and aggregates task
// latencies. Each seed generates its own trace (arrival process and value
// sizes differ), exactly as "experiments are repeated 6 times with
// different random seeds".
func RunSeeds(cfg engine.Config, factory StrategyFactory, seeds []uint64) (*metrics.SeedSet, []engine.Result, error) {
	var set metrics.SeedSet
	var results []engine.Result
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := engine.Run(c, factory())
		if err != nil {
			return nil, nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		set.Add(res.TaskLatency)
		results = append(results, res)
	}
	return &set, results, nil
}

// DefaultSeeds returns n distinct seeds (the paper uses 6).
func DefaultSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// Figure2 regenerates the paper's Figure 2: task latency at the median,
// 95th and 99th percentile for the five strategies, averaged across seeds.
func Figure2(cfg engine.Config, seeds []uint64) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: fmt.Sprintf(
		"Figure 2: task latency percentiles (ms) — %d clients, %d servers×%d cores, load %.0f%%, %d tasks, %d seeds",
		cfg.Clients, cfg.Servers, cfg.Cores, cfg.Load*100, cfg.Tasks, len(seeds))}
	strategies := Figure2Strategies()
	for _, name := range Figure2Order {
		set, _, err := RunSeeds(cfg, strategies[name], seeds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		tbl.Add(metrics.RowFrom(name, set))
	}
	return tbl, nil
}

// Figure2Claims extracts the paper's two quantitative claims from a
// Figure 2 table: the credits-vs-model gap at p99 ("at the 99th percentile
// latency within 38% of an ideal system model") and the improvement over
// C3 ("latency improvements over the state-of-the-art by a factor of 2").
type Figure2Claims struct {
	// CreditsOverModelP99 is max over assigners of p99(credits)/p99(model).
	CreditsOverModelP99 float64
	// C3OverBestCreditsMedian/P95/P99 are p(C3)/p(best credits row).
	C3OverBestCreditsMedian float64
	C3OverBestCreditsP95    float64
	C3OverBestCreditsP99    float64
}

// Claims computes Figure2Claims from a Figure 2 table.
func Claims(tbl *metrics.Table) Figure2Claims {
	rows := map[string]metrics.Row{}
	for _, r := range tbl.Rows {
		rows[r.Label] = r
	}
	var cl Figure2Claims
	for _, a := range []string{"EqualMax", "UnifIncr"} {
		cr, okC := rows[a+"-Credits"]
		mo, okM := rows[a+"-Model"]
		if !okC || !okM || mo.P99MS == 0 {
			continue
		}
		if ratio := cr.P99MS / mo.P99MS; ratio > cl.CreditsOverModelP99 {
			cl.CreditsOverModelP99 = ratio
		}
	}
	c3row, okC3 := rows["C3"]
	if okC3 {
		best := metrics.Row{MedianMS: -1}
		for _, a := range []string{"EqualMax-Credits", "UnifIncr-Credits"} {
			if r, ok := rows[a]; ok && (best.MedianMS < 0 || r.P99MS < best.P99MS) {
				best = r
			}
		}
		if best.MedianMS > 0 {
			cl.C3OverBestCreditsMedian = c3row.MedianMS / best.MedianMS
			cl.C3OverBestCreditsP95 = c3row.P95MS / best.P95MS
			cl.C3OverBestCreditsP99 = c3row.P99MS / best.P99MS
		}
	}
	return cl
}

// String renders the claims next to the paper's numbers.
func (c Figure2Claims) String() string {
	return fmt.Sprintf(
		"credits/model @p99 = %.2f (paper: ≤1.38)\nC3/BRB-credits @median = %.2f, @p95 = %.2f (paper: up to 3×), @p99 = %.2f (paper: up to 2×)",
		c.CreditsOverModelP99, c.C3OverBestCreditsMedian, c.C3OverBestCreditsP95, c.C3OverBestCreditsP99)
}

// LoadSweep (A1) sweeps system load and reports p99 per strategy per load.
func LoadSweep(cfg engine.Config, seeds []uint64, loads []float64) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A1: p99 task latency (ms) vs load — rows are strategy@load"}
	strategies := Figure2Strategies()
	for _, load := range loads {
		c := cfg
		c.Load = load
		for _, name := range Figure2Order {
			set, _, err := RunSeeds(c, strategies[name], seeds)
			if err != nil {
				return nil, err
			}
			tbl.Add(metrics.RowFrom(fmt.Sprintf("%s@%.0f%%", name, load*100), set))
		}
	}
	return tbl, nil
}

// FanoutSweep (A2) sweeps mean task fan-out. The playlist-burst share is
// scaled with the fan-out target so the mixture stays feasible (a burst
// mean above the overall mean is impossible) and bursts remain the same
// fraction of total requests.
func FanoutSweep(cfg engine.Config, seeds []uint64, fanouts []float64) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A2: task latency (ms) vs mean fan-out"}
	strategies := Figure2Strategies()
	for _, f := range fanouts {
		c := cfg
		c.MeanFanout = f
		if cfg.MeanFanout > 0 {
			c.BurstProb = cfg.BurstProb * f / cfg.MeanFanout
		}
		for _, name := range Figure2Order {
			set, _, err := RunSeeds(c, strategies[name], seeds)
			if err != nil {
				return nil, err
			}
			tbl.Add(metrics.RowFrom(fmt.Sprintf("%s@fanout=%.1f", name, f), set))
		}
	}
	return tbl, nil
}

// IntervalSweep (A3) sweeps the credits adaptation interval.
func IntervalSweep(cfg engine.Config, seeds []uint64, intervals []sim.Time) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A3: credits adaptation-interval sensitivity (EqualMax-Credits)"}
	for _, iv := range intervals {
		iv := iv
		set, _, err := RunSeeds(cfg, func() engine.Strategy {
			return credits.New(core.EqualMax{}, credits.Options{AdaptInterval: iv})
		}, seeds)
		if err != nil {
			return nil, err
		}
		tbl.Add(metrics.RowFrom(fmt.Sprintf("adapt=%v", sim.Duration(iv)), set))
	}
	return tbl, nil
}

// ReplicationSweep (A4) sweeps the replication factor.
func ReplicationSweep(cfg engine.Config, seeds []uint64, factors []int) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A4: task latency (ms) vs replication factor"}
	strategies := Figure2Strategies()
	for _, r := range factors {
		c := cfg
		c.Replication = r
		for _, name := range Figure2Order {
			set, _, err := RunSeeds(c, strategies[name], seeds)
			if err != nil {
				return nil, err
			}
			tbl.Add(metrics.RowFrom(fmt.Sprintf("%s@R=%d", name, r), set))
		}
	}
	return tbl, nil
}

// PartitionSweep (A7) sweeps the partition count at a fixed server count —
// the simulation twin of the sharded netstore cluster (netstore.Cluster):
// with more partitions than servers every server belongs to many replica
// groups and tasks scatter across finer shards, so sub-task batches shrink
// while the per-task shard fan-out grows. Only the two headline strategies
// run (the sweep multiplies runs by the partition counts).
func PartitionSweep(cfg engine.Config, seeds []uint64, partitions []int) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A7: task latency (ms) vs partition count (sharded-cluster scenario)"}
	strategies := Figure2Strategies()
	for _, p := range partitions {
		c := cfg
		c.Partitions = p
		for _, name := range []string{"EqualMax-Credits", "C3"} {
			set, _, err := RunSeeds(c, strategies[name], seeds)
			if err != nil {
				return nil, err
			}
			tbl.Add(metrics.RowFrom(fmt.Sprintf("%s@P=%d", name, p), set))
		}
	}
	return tbl, nil
}

// NoiseSweep (A6) sweeps the service-forecast noise: BRB relies on
// forecasting request costs from value sizes, so this quantifies how much
// of the win survives bad forecasts (σ = 1.0 means the actual service
// time is routinely 2-3× off the estimate).
func NoiseSweep(cfg engine.Config, seeds []uint64, sigmas []float64) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A6: task latency (ms) vs forecast-noise sigma"}
	strategies := Figure2Strategies()
	for _, sg := range sigmas {
		c := cfg
		c.NoiseSigma = sg
		for _, name := range []string{"C3", "EqualMax-Credits", "EqualMax-Model"} {
			set, _, err := RunSeeds(c, strategies[name], seeds)
			if err != nil {
				return nil, err
			}
			tbl.Add(metrics.RowFrom(fmt.Sprintf("%s@sigma=%.1f", name, sg), set))
		}
	}
	return tbl, nil
}

// Variants (A5) compares priority-assignment variants and oblivious
// baselines under the credits realization and plain decentralized
// priority queues.
func Variants(cfg engine.Config, seeds []uint64) (*metrics.Table, error) {
	tbl := &metrics.Table{Title: "A5: priority-assignment variants and baselines"}
	factories := []struct {
		name string
		f    StrategyFactory
	}{
		{"EqualMax-Credits", func() engine.Strategy { return credits.New(core.EqualMax{}, credits.Options{}) }},
		{"UnifIncr-Credits", func() engine.Strategy { return credits.New(core.UnifIncr{}, credits.Options{}) }},
		{"UnifIncrSub-Credits", func() engine.Strategy { return credits.New(core.UnifIncrSub{}, credits.Options{}) }},
		{"SJFReq-Credits", func() engine.Strategy { return credits.New(core.SJFReq{}, credits.Options{}) }},
		{"Oblivious-Credits", func() engine.Strategy { return credits.New(core.Oblivious{}, credits.Options{}) }},
		{"EqualMax-LOR", func() engine.Strategy {
			return baseline.NewPriority(core.EqualMax{}, baseline.NewLeastOutstanding())
		}},
		{"Oblivious-Random", func() engine.Strategy { return baseline.New(baseline.Random{}) }},
		{"Oblivious-RoundRobin", func() engine.Strategy { return baseline.New(baseline.NewRoundRobin()) }},
		{"Oblivious-LOR", func() engine.Strategy { return baseline.New(baseline.NewLeastOutstanding()) }},
	}
	for _, fc := range factories {
		set, _, err := RunSeeds(cfg, fc.f, seeds)
		if err != nil {
			return nil, err
		}
		tbl.Add(metrics.RowFrom(fc.name, set))
	}
	return tbl, nil
}

// TraceStats generates one trace with the given config and summarizes it —
// the workload-validation table in EXPERIMENTS.md.
func TraceStats(cfg engine.Config) (workload.Stats, error) {
	topo, err := cluster.New(cluster.Config{Servers: cfg.Servers, Replication: cfg.Replication})
	if err != nil {
		return workload.Stats{}, err
	}
	tr, err := workload.Generate(cfg.WorkloadConfig(), topo)
	if err != nil {
		return workload.Stats{}, err
	}
	return workload.ComputeStats(tr, topo, cfg.Clients), nil
}

// SortedNames returns strategy map keys in deterministic order (helper for
// CLIs iterating Figure2Strategies directly).
func SortedNames(m map[string]StrategyFactory) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
