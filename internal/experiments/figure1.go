package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/brb-repro/brb/internal/backend"
	"github.com/brb-repro/brb/internal/cluster"
	"github.com/brb-repro/brb/internal/core"
	"github.com/brb-repro/brb/internal/queue"
	"github.com/brb-repro/brb/internal/sim"
)

// Figure1Result reconstructs the paper's Figure 1: two tasks, three
// servers, and the completion times of each task under a task-oblivious
// (FIFO) schedule versus the task-aware optimal schedule.
//
// The setup is exactly the paper's: client C1 issues T1 = [A, B, C];
// client C2 issues T2 = [D, E]; server S1 holds keys {A, E}, S2 holds
// {B, C}, S3 holds {D}; every operation takes one time unit. Because B
// and C serialize on S2, T1 cannot finish before t=2, so serving E
// before A on S1 lets T2 finish at t=1 without delaying T1 — the optimal
// schedule. A task-oblivious S1 serves A first (arrival order) and T2
// finishes at t=2.
type Figure1Result struct {
	// ObliviousT1, ObliviousT2 are completion times (in unit steps) under
	// the task-oblivious schedule. The paper: T1=2, T2=2.
	ObliviousT1, ObliviousT2 int64
	// OptimalT1, OptimalT2 are completion times under the task-aware
	// schedule. The paper: T1=2, T2=1.
	OptimalT1, OptimalT2 int64
	// ObliviousOrder and OptimalOrder record the per-server service
	// orders, e.g. "S1:[A E] S2:[B C] S3:[D]".
	ObliviousOrder, OptimalOrder string
}

// Figure1 runs both schedules and returns the reconstruction.
func Figure1() Figure1Result {
	var res Figure1Result
	res.ObliviousT1, res.ObliviousT2, res.ObliviousOrder = runFigure1(queue.FIFOFactory, core.Oblivious{})
	res.OptimalT1, res.OptimalT2, res.OptimalOrder = runFigure1(queue.PriorityFactory, core.EqualMax{})
	return res
}

// Matches reports whether the reconstruction reproduces the paper's
// schedule: optimal T2 = 1 unit vs oblivious T2 = 2 units, with T1 = 2
// under both.
func (r Figure1Result) Matches() bool {
	return r.ObliviousT1 == 2 && r.ObliviousT2 == 2 && r.OptimalT1 == 2 && r.OptimalT2 == 1
}

// String renders the comparison like the paper's timeline.
func (r Figure1Result) String() string {
	return fmt.Sprintf(
		"task-oblivious: T1 ends at %d, T2 ends at %d  (%s)\noptimal:        T1 ends at %d, T2 ends at %d  (%s)",
		r.ObliviousT1, r.ObliviousT2, r.ObliviousOrder,
		r.OptimalT1, r.OptimalT2, r.OptimalOrder)
}

// runFigure1 executes the 5-operation scenario under one discipline and
// assigner, returning T1 and T2 completion steps and the service order.
func runFigure1(qf queue.Factory, assigner core.Assigner) (t1End, t2End int64, order string) {
	const unit = int64(1) // one "time unit" = 1ns in engine terms

	// Groups: 0 -> {A, E} on S1; 1 -> {B, C} on S2; 2 -> {D} on S3.
	names := map[uint64]string{0: "A", 1: "B", 2: "C", 3: "D", 4: "E"}
	mk := func(id uint64, task uint64, group cluster.GroupID) *core.Request {
		return &core.Request{ID: id, TaskID: task, Group: group, EstCost: unit, Service: unit}
	}
	t1 := &core.Task{ID: 1, Requests: []*core.Request{
		mk(0, 1, 0), // A
		mk(1, 1, 1), // B
		mk(2, 1, 1), // C
	}}
	t2 := &core.Task{ID: 2, Requests: []*core.Request{
		mk(3, 2, 2), // D
		mk(4, 2, 0), // E
	}}
	core.Prepare(t1, assigner)
	core.Prepare(t2, assigner)

	eng := &sim.Engine{}
	servers := make([]*backend.Server, 3)
	served := make(map[cluster.ServerID][]string)
	done := map[uint64]int64{}
	for i := range servers {
		i := i
		servers[i] = backend.New(eng, cluster.ServerID(i), 1, qf())
		servers[i].OnComplete = func(req *core.Request, _ int, _ sim.Time) {
			served[cluster.ServerID(i)] = append(served[cluster.ServerID(i)], names[req.ID])
			if end := eng.Now(); end > done[req.TaskID] {
				done[req.TaskID] = end
			}
		}
	}
	// Group -> server placement per the figure.
	serverOf := map[cluster.GroupID]int{0: 0, 1: 1, 2: 2}

	// Arrival order: T1's requests are enqueued before T2's (both tasks
	// arrive "simultaneously"; C1's reach the store first), which is what
	// makes the task-oblivious schedule serve A before E.
	eng.At(0, func() {
		for _, r := range t1.Requests {
			servers[serverOf[r.Group]].EnqueueQuiet(r)
		}
		for _, r := range t2.Requests {
			servers[serverOf[r.Group]].EnqueueQuiet(r)
		}
		for _, s := range servers {
			s.Kick()
		}
	})
	eng.Run()

	var parts []string
	ids := make([]int, 0, len(served))
	for s := range served {
		ids = append(ids, int(s))
	}
	sort.Ints(ids)
	for _, s := range ids {
		parts = append(parts, fmt.Sprintf("S%d:[%s]", s+1, strings.Join(served[cluster.ServerID(s)], " ")))
	}
	return done[1], done[2], strings.Join(parts, " ")
}
