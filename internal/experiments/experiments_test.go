package experiments

import (
	"strings"
	"testing"

	"github.com/brb-repro/brb/internal/engine"
	"github.com/brb-repro/brb/internal/metrics"
	"github.com/brb-repro/brb/internal/sim"
)

func quickConfig() engine.Config {
	cfg := engine.Defaults()
	cfg.Tasks = 4000
	cfg.Keys = 5000
	return cfg
}

func TestFigure1(t *testing.T) {
	res := Figure1()
	if !res.Matches() {
		t.Fatalf("Figure 1 reconstruction does not match the paper:\n%s", res.String())
	}
	// The oblivious S1 must serve A before E; the optimal S1 serves E
	// before A.
	if !strings.Contains(res.ObliviousOrder, "S1:[A E]") {
		t.Fatalf("oblivious order wrong: %s", res.ObliviousOrder)
	}
	if !strings.Contains(res.OptimalOrder, "S1:[E A]") {
		t.Fatalf("optimal order wrong: %s", res.OptimalOrder)
	}
}

func TestFigure2Strategies(t *testing.T) {
	m := Figure2Strategies()
	if len(m) != 5 {
		t.Fatalf("expected 5 strategies, got %d", len(m))
	}
	for _, name := range Figure2Order {
		f, ok := m[name]
		if !ok {
			t.Fatalf("missing strategy %q", name)
		}
		if got := f().Name(); got != name {
			t.Fatalf("factory %q builds strategy named %q", name, got)
		}
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	set, results, err := RunSeeds(quickConfig(), Figure2Strategies()["EqualMax-Credits"], []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || len(results) != 2 {
		t.Fatalf("got %d seeds, %d results", set.Len(), len(results))
	}
	if results[0].TaskLatency == results[1].TaskLatency {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestDefaultSeeds(t *testing.T) {
	s := DefaultSeeds(6)
	if len(s) != 6 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
}

func TestFigure2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure2 comparison is long")
	}
	cfg := quickConfig()
	cfg.Tasks = 15000
	tbl, err := Figure2(cfg, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	rows := map[string]metrics.Row{}
	for _, r := range tbl.Rows {
		rows[r.Label] = r
	}
	// Paper-shape assertions (loose — short runs are noisy):
	// C3 must be the worst at the median, models must be best per
	// assigner.
	for _, a := range []string{"EqualMax", "UnifIncr"} {
		if rows[a+"-Model"].MedianMS > rows[a+"-Credits"].MedianMS*1.15 {
			t.Errorf("%s: model median %.3f worse than credits %.3f",
				a, rows[a+"-Model"].MedianMS, rows[a+"-Credits"].MedianMS)
		}
	}
	if rows["C3"].MedianMS < 1.5*rows["EqualMax-Credits"].MedianMS {
		t.Errorf("C3 median %.3f not clearly above EqualMax-Credits %.3f",
			rows["C3"].MedianMS, rows["EqualMax-Credits"].MedianMS)
	}
	cl := Claims(tbl)
	if cl.C3OverBestCreditsMedian <= 1 {
		t.Errorf("claims: C3/credits median ratio %.2f <= 1", cl.C3OverBestCreditsMedian)
	}
	if cl.CreditsOverModelP99 <= 0 {
		t.Errorf("claims: credits/model p99 ratio missing")
	}
	if !strings.Contains(cl.String(), "paper") {
		t.Errorf("claims string malformed: %s", cl.String())
	}
}

func TestTraceStats(t *testing.T) {
	st, err := TraceStats(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4000 || st.Requests == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanFanout < 7 || st.MeanFanout > 10.5 {
		t.Fatalf("mean fanout = %v, want ~8.6", st.MeanFanout)
	}
}

func TestIntervalSweepSmall(t *testing.T) {
	cfg := quickConfig()
	tbl, err := IntervalSweep(cfg, []uint64{1}, []sim.Time{sim.Second, 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestVariantsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("variants comparison is long")
	}
	cfg := quickConfig()
	tbl, err := Variants(cfg, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames(Figure2Strategies())
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
