package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Advancing the child must not perturb the parent's future stream.
	want := make([]uint64, 10)
	probe := New(7)
	probe.Split() // consume the same split draw
	for i := range want {
		want[i] = probe.Uint64()
	}
	for i := 0; i < 1000; i++ {
		child.Uint64()
	}
	for i := range want {
		if got := parent.Uint64(); got != want[i] {
			t.Fatalf("parent stream perturbed by child at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) bucket %d has count %d, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for n := 1; n <= 20; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const mean = 250.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const mu, sd, n = 5.0, 2.0, 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sd)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestLogNormalMean(t *testing.T) {
	r := New(19)
	mu, sigma := 0.0, 0.5
	want := math.Exp(mu + sigma*sigma/2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("LogNormal mean = %v, want ~%v", got, want)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(23)
	p := Pareto{Alpha: 2.5, Xm: 100}
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < p.Xm {
			t.Fatalf("Pareto sample %v below scale %v", v, p.Xm)
		}
		sum += v
	}
	got, want := sum/n, p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Pareto mean = %v, want ~%v", got, want)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	r := New(29)
	b := BoundedPareto{Alpha: 0.8, L: 16, H: 1 << 20}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		v := b.Sample(r)
		if v < b.L || v > b.H {
			t.Fatalf("BoundedPareto sample %v outside [%v,%v]", v, b.L, b.H)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	r := New(31)
	for _, b := range []BoundedPareto{
		{Alpha: 1.5, L: 10, H: 10000},
		{Alpha: 0.5, L: 32, H: 1 << 20},
		{Alpha: 2.2, L: 1, H: 100},
	} {
		sum := 0.0
		const n = 400000
		for i := 0; i < n; i++ {
			sum += b.Sample(r)
		}
		got, want := sum/n, b.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("BoundedPareto%+v mean = %v, want ~%v", b, got, want)
		}
	}
}

func TestBoundedParetoValidate(t *testing.T) {
	for _, b := range []BoundedPareto{
		{Alpha: 0, L: 1, H: 2},
		{Alpha: 1, L: 0, H: 2},
		{Alpha: 1, L: 2, H: 2},
		{Alpha: -1, L: 1, H: 5},
	} {
		if err := b.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", b)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	// Rank 0 should get roughly 1/H(100) ≈ 19% of draws at s=1.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 share = %v, want ~0.19", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(41)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Zipf(s=0) bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestPoissonProcessRate(t *testing.T) {
	r := New(43)
	p := NewPoissonProcess(1000) // 1000 events/s => mean gap 1ms
	var total int64
	const n = 100000
	for i := 0; i < n; i++ {
		g := p.NextGap(r)
		if g < 1 {
			t.Fatalf("gap %d < 1ns", g)
		}
		total += g
	}
	meanGap := float64(total) / n
	if math.Abs(meanGap-1e6)/1e6 > 0.02 {
		t.Fatalf("Poisson mean gap = %vns, want ~1e6ns", meanGap)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(47)
	const p = 0.2
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	got, want := float64(sum)/n, 1/p
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("Geometric mean = %v, want ~%v", got, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(53)
	if v := r.Geometric(1.0); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

// Property: every seed yields samples inside the declared support.
func TestQuickBoundedParetoSupport(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		b := BoundedPareto{Alpha: 1.2, L: 8, H: 4096}
		for i := 0; i < 200; i++ {
			v := b.Sample(r)
			if v < b.L || v > b.H {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf samples always fall in [0, N).
func TestQuickZipfSupport(t *testing.T) {
	z := NewZipf(37, 0.9)
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 200; i++ {
			if v := z.Sample(r); v < 0 || v >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Shuffle preserves the multiset.
func TestQuickShufflePreserves(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		r := New(seed)
		vals := make([]int, len(raw))
		for i, b := range raw {
			vals[i] = int(b)
		}
		before := map[int]int{}
		for _, v := range vals {
			before[v]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		after := map[int]int{}
		for _, v := range vals {
			after[v]++
		}
		if len(before) != len(after) {
			return false
		}
		for k, c := range before {
			if after[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBoundedPareto(b *testing.B) {
	r := New(1)
	bp := BoundedPareto{Alpha: 0.9, L: 16, H: 1 << 20}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += bp.Sample(r)
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(1024, 0.99)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Sample(r)
	}
	_ = sink
}
