package randx

import (
	"fmt"
	"math"
)

// Pareto samples a (Type-I) Pareto distribution with shape alpha and scale
// xm (the minimum value). Mean is alpha*xm/(alpha-1) for alpha > 1.
type Pareto struct {
	Alpha float64 // tail index; smaller = heavier tail
	Xm    float64 // scale (minimum)
}

// Sample draws one value.
func (p Pareto) Sample(r *RNG) float64 {
	u := r.Float64Open()
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns the analytic mean, or +Inf when alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto samples a Pareto distribution truncated to [L, H] by
// inverse-CDF. Used for value sizes: the Atikoglu et al. Memcached study
// reports heavy-tailed value sizes well fit by a (generalized) Pareto, and
// real stores cap values (we bound at H, e.g. 1 MiB).
type BoundedPareto struct {
	Alpha float64
	L, H  float64
}

// Validate reports whether the parameters define a proper distribution.
func (b BoundedPareto) Validate() error {
	if !(b.Alpha > 0) {
		return fmt.Errorf("randx: BoundedPareto alpha %v must be > 0", b.Alpha)
	}
	if !(b.L > 0) || !(b.H > b.L) {
		return fmt.Errorf("randx: BoundedPareto bounds L=%v H=%v invalid", b.L, b.H)
	}
	return nil
}

// Sample draws one value in [L, H].
func (b BoundedPareto) Sample(r *RNG) float64 {
	u := r.Float64Open()
	la := math.Pow(b.L, b.Alpha)
	ha := math.Pow(b.H, b.Alpha)
	// Inverse CDF of the truncated Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/b.Alpha)
	if x < b.L {
		x = b.L
	}
	if x > b.H {
		x = b.H
	}
	return x
}

// Mean returns the analytic mean of the bounded Pareto.
func (b BoundedPareto) Mean() float64 {
	a := b.Alpha
	if a == 1 {
		return (b.H * b.L / (b.H - b.L)) * math.Log(b.H/b.L)
	}
	la := math.Pow(b.L, a)
	return la / (1 - math.Pow(b.L/b.H, a)) * (a / (a - 1)) *
		(1/math.Pow(b.L, a-1) - 1/math.Pow(b.H, a-1))
}

// Zipf samples ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. A small precomputed CDF with binary search keeps sampling
// O(log N) and allocation-free after construction.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0
// (s = 0 degenerates to uniform). It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against FP drift
	return &Zipf{cdf: cdf}
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N); rank 0 is the most popular.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PoissonProcess generates event times of a homogeneous Poisson process with
// the given rate (events per second). Times are returned in nanoseconds.
type PoissonProcess struct {
	MeanGapNanos float64
}

// NewPoissonProcess returns a process with the given rate in events/second.
// It panics if rate <= 0.
func NewPoissonProcess(rate float64) *PoissonProcess {
	if !(rate > 0) {
		panic("randx: PoissonProcess rate must be positive")
	}
	return &PoissonProcess{MeanGapNanos: 1e9 / rate}
}

// NextGap draws the next exponential inter-arrival gap in nanoseconds
// (always >= 1 so that successive events have distinct timestamps).
func (p *PoissonProcess) NextGap(r *RNG) int64 {
	g := int64(r.Exp(p.MeanGapNanos))
	if g < 1 {
		g = 1
	}
	return g
}

// Geometric samples the number of trials until the first success (support
// {1, 2, ...}) with success probability p in (0, 1]. Mean is 1/p.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("randx: Geometric with non-positive p")
	}
	u := r.Float64Open()
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
}
