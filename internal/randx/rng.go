// Package randx provides a deterministic, seedable random number generator
// and the statistical distributions used by the BRB workload and service
// models: exponential inter-arrivals (Poisson processes), bounded Pareto
// value sizes (Atikoglu et al., SIGMETRICS '12), Zipf key popularity, and
// LogNormal service-time noise.
//
// All randomness in the repository flows through *randx.RNG so that every
// experiment is exactly reproducible from its seed, and so that independent
// sub-streams (arrivals, sizes, keys, ...) can be derived from one master
// seed without correlation.
package randx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded via SplitMix64). The zero value is not usable; use
// New. RNG is not safe for concurrent use; derive one per goroutine with
// Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed. Two RNGs created with the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm = splitmix64(&sm)
		r.s[i] = sm
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's current state, and advancing the
// child does not advance the parent.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in (0, 1), never exactly zero — safe
// to pass to log() and inverse-CDF transforms.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean
// (mean = 1/rate). Used for Poisson inter-arrival times and memoryless
// service components.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(r.Float64Open())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)). Note mu and sigma are the
// parameters of the underlying normal, not the mean of the result; the mean
// of the result is exp(mu + sigma^2/2).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}
