module github.com/brb-repro/brb

go 1.22
